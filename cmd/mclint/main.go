// Command mclint runs the detlint static-analysis suite over the module:
// the determinism and pooling invariants the simulator's results depend
// on, enforced as machine-checked rules (see internal/detlint).
//
// Usage:
//
//	mclint [-list] [pattern ...]
//
// Patterns default to ./... and accept plain directories or the
// recursive dir/... form, resolved against the working directory. The
// exit status is 0 when the tree is clean, 1 when any rule fires, and 2
// on usage or load errors.
//
// Findings can be suppressed at a specific site with a mandatory reason:
//
//	//detlint:ignore <rule> <reason>
//
// placed on the offending line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"coalloc/internal/detlint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the rule catalog and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mclint [-list] [pattern ...]\n\n")
		fmt.Fprintf(stderr, "Checks the packages matching the patterns (default ./...) against the\n")
		fmt.Fprintf(stderr, "detlint determinism rules. Exits 1 if any rule fires.\n\nRules:\n")
		printRules(stderr)
		fmt.Fprintf(stderr, "\nSuppress a finding on its line or the line above, with a reason:\n")
		fmt.Fprintf(stderr, "  //detlint:ignore <rule> <reason>\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *list {
		printRules(stdout)
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := detlint.Run(detlint.Config{Dir: ".", Patterns: patterns})
	if err != nil {
		fmt.Fprintf(stderr, "mclint: %v\n", err)
		return 2
	}
	if len(findings) == 0 {
		return 0
	}
	cwd, _ := os.Getwd()
	for _, f := range findings {
		name := f.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", name, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
	}
	fmt.Fprintf(stderr, "mclint: %d finding(s)\n", len(findings))
	return 1
}

func printRules(w *os.File) {
	for _, a := range detlint.All() {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
}
