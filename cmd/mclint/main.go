// Command mclint runs the detlint static-analysis suite over the module:
// the determinism and pooling invariants the simulator's results depend
// on, enforced as machine-checked rules (see internal/detlint).
//
// Usage:
//
//	mclint [-list] [-json] [pattern ...]
//
// Patterns default to ./... and accept plain directories or the
// recursive dir/... form, resolved against the working directory. The
// exit status is 0 when the tree is clean, 1 when any rule fires, and 2
// on usage or load errors (a package that fails to parse or type-check,
// or a failed noalloc escape-analysis probe).
//
// -json replaces the plain file:line:col lines with a JSON array of
// findings on stdout, for tooling.
//
// Findings can be suppressed at a specific site with a mandatory reason:
//
//	//detlint:ignore <rule> <reason>
//
// placed on the offending line or the line directly above it. A
// directive that suppresses nothing is itself reported (stalesuppress).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"coalloc/internal/detlint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire format for one finding.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the rule catalog and exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mclint [-list] [-json] [pattern ...]\n\n")
		fmt.Fprintf(stderr, "Checks the packages matching the patterns (default ./...) against the\n")
		fmt.Fprintf(stderr, "detlint determinism rules. Exits 1 if any rule fires, 2 if a package\n")
		fmt.Fprintf(stderr, "fails to load or type-check.\n\nRules:\n")
		printRules(stderr)
		fmt.Fprintf(stderr, "\nSuppress a finding on its line or the line above, with a reason:\n")
		fmt.Fprintf(stderr, "  //detlint:ignore <rule> <reason>\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *list {
		printRules(stdout)
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := detlint.Run(detlint.Config{Dir: ".", Patterns: patterns})
	if err != nil {
		fmt.Fprintf(stderr, "mclint: %v\n", err)
		return 2
	}
	cwd, _ := os.Getwd()
	relName := func(name string) string {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
				return rel
			}
		}
		return name
	}
	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: relName(f.Pos.Filename),
				Line: f.Pos.Line,
				Col:  f.Pos.Column,
				Rule: f.Rule,
				Msg:  f.Msg,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "mclint: %v\n", err)
			return 2
		}
		if len(findings) == 0 {
			return 0
		}
		fmt.Fprintf(stderr, "mclint: %d finding(s)\n", len(findings))
		return 1
	}
	if len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", relName(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
	}
	fmt.Fprintf(stderr, "mclint: %d finding(s)\n", len(findings))
	return 1
}

func printRules(w *os.File) {
	for _, a := range detlint.All() {
		fmt.Fprintf(w, "  %-13s %s\n", a.Name, a.Doc)
	}
}
