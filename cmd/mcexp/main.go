// Command mcexp reproduces the paper's experiments by id.
//
// Usage:
//
//	mcexp [flags] <experiment>...
//	mcexp [flags] all
//	mcexp list
//
// Experiments: table1 table2 table3 fig1 fig2 fig3 fig4 fig5 fig6 fig7
// ratio workload, plus the ablations and the fault-injection extension
// (`mcexp list` prints them all). Use -quick for reduced run lengths,
// -data DIR to also write CSV files with the plotted points.
package main

import (
	"flag"
	"fmt"
	"os"

	"coalloc/internal/cliutil"
	"coalloc/internal/dectrace"
	"coalloc/internal/experiments"
	"coalloc/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced run lengths (tests, smoke checks)")
	seed := flag.Uint64("seed", 1, "master random seed")
	reps := flag.Int("reps", 0, "replications per point (0 = preset default); with -precision this is the minimum replication count")
	precision := flag.Float64("precision", 0, "run replications per point until the 95% half-width of the mean response falls below this relative precision, e.g. 0.05 (0 = fixed replication count)")
	maxReps := flag.Int("max-reps", 0, "replication cap for -precision (0 = default 20)")
	satCutoff := flag.Bool("saturation-cutoff", true, "stop saturated sweep points at the first provable divergence checkpoint instead of the full horizon (non-saturated points are bit-identical either way)")
	measure := flag.Int("jobs", 0, "measured jobs per run (0 = preset default)")
	dataDir := flag.String("data", "", "directory for CSV output (optional)")
	progress := flag.Bool("progress", false, "print one line per completed sweep point (stderr)")
	metrics := flag.Bool("metrics", false, "print an aggregate metrics summary after the experiments")
	pergen := flag.Bool("pergen", false, "regenerate the workload inside every policy run instead of sharing a per-point trace (ablation; results are identical)")
	mttr := flag.Float64("mttr", 0, "mean processor repair time in s for the fault experiments (0 = 900 s default)")
	mtbf := flag.Float64("mtbf", 0, "per-cluster mean time between failures in s for the checkpoint experiment (0 = 1000 s default; the faults experiment sweeps its own grid)")
	retryBase := flag.Float64("retry-base", 0, "base resubmit backoff for killed jobs in s (0 = 10 s default)")
	retryCap := flag.Float64("retry-cap", 0, "resubmit backoff cap in s (0 = 600 s default)")
	ckptInterval := flag.Float64("checkpoint-interval", 0, "checkpoint interval in s for the faults experiment (0 = no checkpointing; the checkpoint experiment sweeps its own grid)")
	lookahead := flag.Int("lookahead", 0, "conservative-backfilling reservation bound (0 = default 32; must be >= 1)")
	decisions := flag.Bool("decisions", false, "record scheduling decisions with counterfactual regret in every simulation run (regret aggregates land in the results; the regret experiment enables this by itself)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mcexp [flags] <experiment>...|all|list\n\nexperiments:\n")
		for _, n := range experiments.Names() {
			fmt.Fprintf(os.Stderr, "  %-9s %s\n", n, experiments.Describe(n))
		}
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if flag.Arg(0) == "list" {
		for _, n := range experiments.Names() {
			fmt.Printf("%-9s %s\n", n, experiments.Describe(n))
		}
		return
	}

	params := experiments.DefaultParams()
	if *quick {
		params = experiments.QuickParams()
	}
	params.Seed = *seed
	if *reps > 0 {
		params.Replications = *reps
	}
	if *measure > 0 {
		params.MeasureJobs = *measure
	}
	params.DataDir = *dataDir
	for _, f := range []struct {
		name  string
		value float64
	}{
		{"-mttr", *mttr},
		{"-mtbf", *mtbf},
		{"-checkpoint-interval", *ckptInterval},
	} {
		if f.value < 0 || f.value != f.value {
			fmt.Fprintf(os.Stderr, "mcexp: %s %g must be non-negative\n", f.name, f.value)
			os.Exit(2)
		}
	}
	cliutil.CheckRetryWindow("mcexp", *retryBase, *retryCap)
	params.FaultMTTR = *mttr
	params.FaultMTBF = *mtbf
	params.FaultRetryBase = *retryBase
	params.FaultRetryCap = *retryCap
	params.FaultCheckpointInterval = *ckptInterval

	// -lookahead and -decisions only act on experiments that run the
	// matching simulations; accepted-but-inert flags would read as a
	// measurement of a configuration that never ran. An unknown
	// experiment name disables the applicability checks — the run loop
	// rejects the name itself with the full list.
	anyCons, anySims, anyUnknown := false, false, false
	for _, name := range flag.Args() {
		switch {
		case name == "all":
			anyCons, anySims = true, true
		case !experiments.Known(name):
			anyUnknown = true
		default:
			anyCons = anyCons || experiments.UsesConservative(name)
			anySims = anySims || experiments.UsesSimulations(name)
		}
	}
	cliutil.CheckLookahead("mcexp", *lookahead, anyCons || anyUnknown,
		"none of the requested experiments run a conservative-backfilling policy (backfill, faults, checkpoint do)")
	cliutil.CheckDecisions("mcexp", *decisions, anySims || anyUnknown,
		"none of the requested experiments run simulations")
	params.Lookahead = *lookahead
	if *decisions {
		params.Decisions = &dectrace.Options{}
	}
	if *precision < 0 || *precision != *precision {
		fmt.Fprintf(os.Stderr, "mcexp: -precision %g must be non-negative\n", *precision)
		os.Exit(2)
	}
	if *maxReps < 0 {
		fmt.Fprintf(os.Stderr, "mcexp: -max-reps %d must be non-negative\n", *maxReps)
		os.Exit(2)
	}
	if *maxReps > 0 && *precision == 0 {
		fmt.Fprintf(os.Stderr, "mcexp: -max-reps only applies with -precision\n")
		os.Exit(2)
	}
	params.Precision = *precision
	params.MaxReplications = *maxReps
	params.SaturationCutoff = *satCutoff
	if *pprofAddr != "" {
		if err := obs.StartPprof(*pprofAddr); err != nil {
			fmt.Fprintf(os.Stderr, "mcexp: %v\n", err)
			os.Exit(1)
		}
	}
	if *progress {
		params.Progress = os.Stderr
	}
	params.PerPolicyWorkload = *pergen
	var observer *obs.Observer
	if *metrics {
		// Note: attaching an Observer serializes the sweeps (it is
		// single-threaded), trading wall-clock for deterministic counts.
		observer = obs.New(nil)
		params.Observer = observer
	}
	env := experiments.NewEnv(params)

	for _, name := range flag.Args() {
		var out string
		var err error
		if name == "all" {
			out, err = experiments.All(env)
		} else {
			out, err = experiments.Run(name, env)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcexp: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if *metrics {
		fmt.Println("--- metrics ---")
		if err := observer.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mcexp: %v\n", err)
			os.Exit(1)
		}
	}
	// Close errors are write errors for buffered trace data; unchecked, a
	// full disk would silently truncate the trace. (Nil-safe: without
	// -metrics there is no observer.)
	if err := observer.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "mcexp: writing trace: %v\n", err)
		os.Exit(1)
	}
}
