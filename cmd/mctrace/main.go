// Command mctrace generates and inspects the synthetic DAS job log.
//
// Usage:
//
//	mctrace gen [-jobs N] [-seed S] [-o file.swf]   write a synthetic log (SWF)
//	mctrace stats [file.swf]                        summarize a log (default: synthetic)
//	mctrace density [file.swf]                      per-size job counts (Fig. 1 data)
//	mctrace filter [-maxsize N] [-maxservice S] [-from T -to T] [-o out.swf] [file.swf]
package main

import (
	"flag"
	"fmt"
	"os"

	"coalloc/internal/dastrace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		fs := flag.NewFlagSet("gen", flag.ExitOnError)
		jobs := fs.Int("jobs", 0, "number of jobs (0 = default 39356)")
		seed := fs.Uint64("seed", 0, "random seed (0 = default)")
		out := fs.String("o", "", "output file (default stdout)")
		fs.Parse(os.Args[2:])
		cfg := dastrace.DefaultConfig()
		if *jobs > 0 {
			cfg.NumJobs = *jobs
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		recs := dastrace.Generate(cfg)
		w := os.Stdout
		var f *os.File
		if *out != "" {
			var err error
			f, err = os.Create(*out)
			if err != nil {
				fatalf("%v", err)
			}
			w = f
		}
		header := fmt.Sprintf("Synthetic DAS1-like log\nJobs: %d\nSeed: %d\nMaxProcs: 128", cfg.NumJobs, cfg.Seed)
		if err := dastrace.WriteSWF(w, recs, header); err != nil {
			fatalf("%v", err)
		}
		// Close errors surface the write failures (full disk, quota) that
		// only materialize when buffered data is flushed.
		if f != nil {
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
		}

	case "stats":
		recs := loadLog(os.Args[2:])
		ls := dastrace.Analyze(recs)
		fmt.Printf("jobs                %d\n", ls.Jobs)
		fmt.Printf("distinct sizes      %d in [%d, %d]\n", ls.DistinctSizes, ls.MinSize, ls.MaxSize)
		fmt.Printf("mean size           %.2f (CV %.2f)\n", ls.MeanSize, ls.SizeCV)
		fmt.Printf("mean service        %.1f s (CV %.2f, max %.1f)\n", ls.MeanService, ls.ServiceCV, ls.MaxService)
		fmt.Printf("below 900 s         %.1f%%\n", 100*ls.FracServiceUnderKill)
		fmt.Println()
		fmt.Print(dastrace.FormatTable1(ls))

	case "density":
		recs := loadLog(os.Args[2:])
		sizes, counts := dastrace.SizeDensity(recs)
		fmt.Println("size jobs")
		for i, s := range sizes {
			fmt.Printf("%4d %d\n", s, counts[i])
		}

	case "filter":
		fs := flag.NewFlagSet("filter", flag.ExitOnError)
		maxSize := fs.Int("maxsize", 0, "drop jobs larger than this (0 = keep all)")
		maxService := fs.Float64("maxservice", 0, "drop jobs with longer service (0 = keep all)")
		from := fs.Float64("from", -1, "window start in seconds (-1 = no window)")
		to := fs.Float64("to", -1, "window end in seconds")
		out := fs.String("o", "", "output file (default stdout)")
		fs.Parse(os.Args[2:])
		recs := loadLog(fs.Args())
		if *maxSize > 0 {
			recs = dastrace.FilterMaxSize(recs, *maxSize)
		}
		if *maxService > 0 {
			recs = dastrace.FilterMaxService(recs, *maxService)
		}
		if *from >= 0 && *to > *from {
			recs = dastrace.FilterWindow(recs, *from, *to)
		}
		recs = dastrace.Renumber(recs)
		w := os.Stdout
		var f *os.File
		if *out != "" {
			var err error
			f, err = os.Create(*out)
			if err != nil {
				fatalf("%v", err)
			}
			w = f
		}
		if err := dastrace.WriteSWF(w, recs, fmt.Sprintf("Filtered log\nJobs: %d", len(recs))); err != nil {
			fatalf("%v", err)
		}
		if f != nil {
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
		}

	default:
		usage()
	}
}

// loadLog reads an SWF file when a path is given, and otherwise generates
// the canonical synthetic log.
func loadLog(args []string) []dastrace.Record {
	if len(args) == 0 {
		return dastrace.Default()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close() //detlint:ignore closecheck read-only handle; ReadSWF's error is the one that matters
	recs, err := dastrace.ReadSWF(f)
	if err != nil {
		fatalf("%v", err)
	}
	return recs
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mctrace gen|stats|density|filter [args]")
	os.Exit(2)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mctrace: "+format+"\n", args...)
	os.Exit(1)
}
