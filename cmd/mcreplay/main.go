// Command mcreplay replays a job trace (Standard Workload Format, or the
// built-in synthetic DAS log) through a scheduling policy and reports the
// resulting response times and utilization.
//
// Examples:
//
//	mcreplay -policy LS -limit 16                 # synthetic DAS log
//	mcreplay -policy GS -limit 32 -load 2 das.swf # compress gaps 2x
//	mcreplay -policy SC -clusters 128 das.swf     # single-cluster replay
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"coalloc/internal/cluster"
	"coalloc/internal/core"
	"coalloc/internal/dastrace"
	"coalloc/internal/obs"
	"coalloc/internal/workload"
)

func main() {
	policy := flag.String("policy", "LS", "scheduling policy: GS, GS-EASY, LS, LS-sorted, LP, SC or SC-EASY")
	limit := flag.Int("limit", 16, "job-component-size limit")
	load := flag.Float64("load", 1, "load factor: >1 compresses interarrival gaps")
	ext := flag.Float64("ext", workload.DefaultExtensionFactor, "extension factor for multi-component jobs")
	seed := flag.Uint64("seed", 1, "routing seed")
	unbalanced := flag.Bool("unbalanced", false, "unbalanced local-queue routing")
	clusters := flag.String("clusters", "", "comma-separated cluster sizes (default 32,32,32,32; SC: 128)")
	jobs := flag.Int("jobs", 0, "replay only the first N jobs (0 = all)")
	fit := flag.String("fit", "WF", "placement rule: WF, FF or BF")
	schedule := flag.String("schedule", "", "write the per-job schedule (Gantt CSV) to this file")
	metrics := flag.Bool("metrics", false, "print a metrics summary block after the results")
	tracePath := flag.String("trace", "", "write a JSONL event trace to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		if err := obs.StartPprof(*pprofAddr); err != nil {
			fatalf("%v", err)
		}
	}

	var recs []dastrace.Record
	if flag.NArg() == 0 {
		recs = dastrace.Default()
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		recs, err = dastrace.ReadSWF(f)
		f.Close() //detlint:ignore closecheck read-only handle; ReadSWF's error is the one that matters
		if err != nil {
			fatalf("%v", err)
		}
	}
	if *jobs > 0 && *jobs < len(recs) {
		recs = recs[:*jobs]
	}

	clusterSizes := []int{32, 32, 32, 32}
	if *policy == "SC" || *policy == "SC-EASY" {
		clusterSizes = []int{128}
	}
	if *clusters != "" {
		clusterSizes = nil
		for _, fld := range strings.Split(*clusters, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(fld))
			if err != nil || n <= 0 {
				fatalf("bad -clusters value %q", fld)
			}
			clusterSizes = append(clusterSizes, n)
		}
	}

	componentLimit := *limit
	if *policy == "SC" || *policy == "SC-EASY" {
		// Total requests: never split.
		componentLimit = clusterSizes[0]
	}

	var fitRule cluster.Fit
	switch strings.ToUpper(*fit) {
	case "WF":
		fitRule = cluster.WorstFit
	case "FF":
		fitRule = cluster.FirstFit
	case "BF":
		fitRule = cluster.BestFit
	default:
		fatalf("unknown fit rule %q", *fit)
	}

	var weights []float64
	if *unbalanced {
		weights = core.Unbalanced(len(clusterSizes))
	}

	cfg := core.ReplayConfig{
		ClusterSizes:    clusterSizes,
		Records:         recs,
		Policy:          *policy,
		Fit:             fitRule,
		ComponentLimit:  componentLimit,
		ExtensionFactor: *ext,
		LoadFactor:      *load,
		QueueWeights:    weights,
		Seed:            *seed,
	}
	var schedFile *os.File
	if *schedule != "" {
		f, err := os.Create(*schedule)
		if err != nil {
			fatalf("%v", err)
		}
		schedFile = f
		cfg.ScheduleWriter = f
	}
	var observer *obs.Observer
	var traceFile *os.File
	if *metrics || *tracePath != "" {
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatalf("%v", err)
			}
			traceFile = f
			observer = obs.New(f)
		} else {
			observer = obs.New(nil)
		}
		cfg.Observer = observer
	}
	res, err := core.Replay(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	// Close errors are write errors for buffered data; unchecked, a full
	// disk would silently truncate the schedule or trace.
	if schedFile != nil {
		if err := schedFile.Close(); err != nil {
			fatalf("writing schedule: %v", err)
		}
	}
	if err := observer.Close(); err != nil {
		fatalf("writing trace: %v", err)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fatalf("writing trace: %v", err)
		}
	}

	fmt.Printf("policy            %s\n", res.Policy)
	fmt.Printf("jobs replayed     %d\n", res.Jobs)
	fmt.Printf("makespan          %.0f s (%.1f days)\n", res.Makespan, res.Makespan/86400)
	fmt.Printf("gross utilization %.4f\n", res.GrossUtilization)
	fmt.Printf("net utilization   %.4f\n", res.NetUtilization)
	fmt.Printf("mean response     %.1f s\n", res.MeanResponse)
	fmt.Printf("median response   %.1f s\n", res.MedianResponse)
	fmt.Printf("p95 response      %.1f s\n", res.P95Response)
	fmt.Printf("mean slowdown     %.2f\n", res.MeanSlowdown)
	fmt.Printf("max queue         %d\n", res.MaxQueue)
	if *metrics {
		fmt.Println()
		fmt.Println("--- metrics ---")
		if err := observer.WriteText(os.Stdout); err != nil {
			fatalf("%v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcreplay: "+format+"\n", args...)
	os.Exit(1)
}
