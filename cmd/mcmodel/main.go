// Command mcmodel generates job traces from the parametric
// Feitelson-style workload model (internal/wmodel) and writes them in
// Standard Workload Format, ready for mcreplay or external tools.
//
// Usage:
//
//	mcmodel gen [-jobs N] [-seed S] [-procs P] [-serial F] [-o file.swf]
//	mcmodel stats [-jobs N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"coalloc/internal/dastrace"
	"coalloc/internal/wmodel"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	fs := flag.NewFlagSet(os.Args[1], flag.ExitOnError)
	jobs := fs.Int("jobs", 20000, "number of jobs")
	seed := fs.Uint64("seed", 1, "random seed")
	procs := fs.Int("procs", 0, "machine size (0 = default 128)")
	serial := fs.Float64("serial", -1, "serial-job fraction (negative = default)")
	rate := fs.Float64("rate", 0, "mean arrival rate in jobs/s (0 = default)")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(os.Args[2:])

	cfg := wmodel.Default()
	if *procs > 0 {
		cfg.MaxProcs = *procs
	}
	if *serial >= 0 {
		cfg.SerialProb = *serial
	}
	if *rate > 0 {
		cfg.ArrivalRate = *rate
	}
	model, err := wmodel.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	recs := model.Generate(*jobs, *seed)

	switch os.Args[1] {
	case "gen":
		w := os.Stdout
		var f *os.File
		if *out != "" {
			var err error
			f, err = os.Create(*out)
			if err != nil {
				fatalf("%v", err)
			}
			w = f
		}
		header := fmt.Sprintf("Feitelson-style model trace\nJobs: %d\nSeed: %d\nMaxProcs: %d",
			*jobs, *seed, cfg.MaxProcs)
		if err := dastrace.WriteSWF(w, recs, header); err != nil {
			fatalf("%v", err)
		}
		// Close errors surface the write failures (full disk, quota) that
		// only materialize when buffered data is flushed.
		if f != nil {
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
		}

	case "stats":
		ls := dastrace.Analyze(recs)
		fmt.Printf("jobs                %d\n", ls.Jobs)
		fmt.Printf("distinct sizes      %d in [%d, %d]\n", ls.DistinctSizes, ls.MinSize, ls.MaxSize)
		fmt.Printf("mean size           %.2f (CV %.2f)\n", ls.MeanSize, ls.SizeCV)
		fmt.Printf("power-of-two mass   %.3f\n", ls.PowerOfTwoMass)
		fmt.Printf("mean service        %.1f s (CV %.2f, max %.1f)\n",
			ls.MeanService, ls.ServiceCV, ls.MaxService)

	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mcmodel gen|stats [flags]")
	os.Exit(2)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcmodel: "+format+"\n", args...)
	os.Exit(1)
}
