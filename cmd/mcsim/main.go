// Command mcsim runs one multicluster co-allocation simulation with
// explicit parameters and prints its metrics.
//
// Examples:
//
//	mcsim -policy LS -limit 16 -util 0.5
//	mcsim -policy SC -util 0.6 -jobs 50000
//	mcsim -policy LP -limit 32 -unbalanced -util 0.45
//	mcsim -policy GS -limit 24 -backlog    # maximal-utilization run
//	mcsim -policy LS -util 0.4 -mtbf 2000  # with processor failures
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"coalloc/internal/cliutil"
	"coalloc/internal/cluster"
	"coalloc/internal/core"
	"coalloc/internal/dectrace"
	"coalloc/internal/faults"
	"coalloc/internal/obs"
	"coalloc/internal/workload"
)

func main() {
	policy := flag.String("policy", "LS", "scheduling policy: GS, GS-EASY, GS-CONS, GS-SPF, LS, LS-sorted, LP, SC, SC-EASY or SC-CONS")
	limit := flag.Int("limit", 16, "job-component-size limit (16, 24 or 32 in the paper)")
	util := flag.Float64("util", 0.5, "offered gross utilization")
	jobs := flag.Int("jobs", 30000, "measured jobs")
	warmup := flag.Int("warmup", 3000, "warmup jobs (0 = no warmup, measure from time zero)")
	seed := flag.Uint64("seed", 1, "random seed")
	reps := flag.Int("reps", 1, "replications")
	cap64 := flag.Bool("cap64", false, "use the DAS-s-64 size distribution (total sizes cut at 64)")
	unbalanced := flag.Bool("unbalanced", false, "route 40%/20%/20%/20% of jobs to the local queues")
	ext := flag.Float64("ext", workload.DefaultExtensionFactor, "wide-area extension factor for multi-component jobs")
	fit := flag.String("fit", "WF", "placement rule: WF, FF or BF")
	lookahead := flag.Int("lookahead", 0, "conservative-backfilling reservation bound (0 = default 32; must be >= 1)")
	clusters := flag.String("clusters", "", "comma-separated cluster sizes (default 32,32,32,32; SC uses 128)")
	backlog := flag.Bool("backlog", false, "run a constant-backlog (maximal utilization) simulation instead")
	mtbf := flag.Float64("mtbf", 0, "per-cluster mean time between processor failures in s (0 = no failures)")
	mttr := flag.Float64("mttr", 900, "mean time to repair a failed processor in s")
	retryBase := flag.Float64("retry-base", 10, "base resubmit backoff for killed jobs in s")
	retryCap := flag.Float64("retry-cap", 600, "resubmit backoff cap in s")
	ckptInterval := flag.Float64("checkpoint-interval", 0, "checkpoint interval for killed jobs in s (0 = no checkpointing; requires -mtbf)")
	satCutoff := flag.Bool("saturation-cutoff", false, "stop a saturated run at the first provable divergence checkpoint instead of the full horizon (non-saturated runs are unaffected)")
	metrics := flag.Bool("metrics", false, "print a metrics summary block after the results")
	decisions := flag.Bool("decisions", false, "record every scheduling decision with its unchosen alternatives and counterfactual regret (adds decision records to -trace and regret lines to the results)")
	tracePath := flag.String("trace", "", "write a JSONL event trace to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		if err := obs.StartPprof(*pprofAddr); err != nil {
			fatalf("%v", err)
		}
	}

	der := workload.DeriveDefault()
	sizes := der.Sizes128
	if *cap64 {
		sizes = der.Sizes64
	}

	clusterSizes := []int{32, 32, 32, 32}
	if *policy == "SC" || *policy == "SC-EASY" {
		clusterSizes = []int{128}
	}
	if *clusters != "" {
		clusterSizes = nil
		for _, f := range strings.Split(*clusters, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fatalf("bad -clusters value %q", f)
			}
			clusterSizes = append(clusterSizes, n)
		}
	}

	spec := workload.Spec{
		Sizes:           sizes,
		Service:         der.Service,
		ComponentLimit:  *limit,
		Clusters:        len(clusterSizes),
		ExtensionFactor: *ext,
	}
	if *policy == "SC" || *policy == "SC-EASY" {
		spec.ComponentLimit = sizes.Max() // total requests: never split
	}

	var fitRule cluster.Fit
	switch strings.ToUpper(*fit) {
	case "WF":
		fitRule = cluster.WorstFit
	case "FF":
		fitRule = cluster.FirstFit
	case "BF":
		fitRule = cluster.BestFit
	default:
		fatalf("unknown fit rule %q (want WF, FF or BF)", *fit)
	}

	var weights []float64
	if *unbalanced {
		weights = core.Unbalanced(len(clusterSizes))
	}

	conservative := *policy == "GS-CONS" || *policy == "SC-CONS"
	cliutil.CheckLookahead("mcsim", *lookahead, conservative,
		fmt.Sprintf("policy %s takes no reservation bound (want GS-CONS or SC-CONS)", *policy))
	cliutil.CheckDecisions("mcsim", *decisions, !*backlog,
		"constant-backlog runs measure capacity, not per-job scheduling")
	cliutil.CheckRetryWindow("mcsim", *retryBase, *retryCap)

	if *ckptInterval != 0 && *mtbf <= 0 {
		fatalf("-checkpoint-interval %g without -mtbf: checkpointing only matters when failures can kill jobs", *ckptInterval)
	}
	if *backlog {
		if *mtbf > 0 {
			fatalf("-mtbf cannot be combined with -backlog (constant-backlog runs measure reliable-hardware capacity)")
		}
		// These outputs only exist for open-system runs; accepting the
		// flags here would silently drop them.
		if *metrics || *tracePath != "" {
			cliutil.Failf("mcsim", "-metrics and -trace cannot be combined with -backlog (constant-backlog runs have no observer)")
		}
		res, err := core.RunBacklog(core.BacklogConfig{
			ClusterSizes: clusterSizes,
			Spec:         spec,
			Policy:       *policy,
			Fit:          fitRule,
			QueueWeights: weights,
			Seed:         *seed,
			Lookahead:    *lookahead,
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("policy              %s (constant backlog)\n", res.Policy)
		fmt.Printf("max gross util      %.4f\n", res.MaxGrossUtilization)
		fmt.Printf("max net util        %.4f\n", res.MaxNetUtilization)
		fmt.Printf("throughput          %.5f jobs/s\n", res.Throughput)
		fmt.Printf("jobs measured       %d\n", res.Jobs)
		return
	}

	var capacity int
	for _, s := range clusterSizes {
		capacity += s
	}
	cfg := core.Config{
		ClusterSizes: clusterSizes,
		Spec:         spec,
		Policy:       *policy,
		Fit:          fitRule,
		ArrivalRate:  spec.ArrivalRateForGrossUtilization(*util, capacity),
		QueueWeights: weights,
		WarmupJobs:   *warmup,
		NoWarmup:     *warmup == 0,
		MeasureJobs:  *jobs,
		Seed:         *seed,
		Lookahead:    *lookahead,

		SaturationCutoff: *satCutoff,
	}
	if *decisions {
		cfg.Decisions = &dectrace.Options{}
	}
	if *mtbf > 0 {
		cfg.Faults = &faults.Spec{
			MTBF:               *mtbf,
			MTTR:               *mttr,
			RetryBase:          *retryBase,
			RetryCap:           *retryCap,
			CheckpointInterval: *ckptInterval,
		}
	}
	var observer *obs.Observer
	var traceFile *os.File
	if *metrics || *tracePath != "" {
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatalf("%v", err)
			}
			traceFile = f
			observer = obs.New(f)
		} else {
			observer = obs.New(nil)
		}
		cfg.Observer = observer
	}
	res, err := core.RunReplications(cfg, *reps)
	if err != nil {
		fatalf("%v", err)
	}
	// Close errors are write errors for buffered data; unchecked, a full
	// disk would silently truncate the trace.
	if err := observer.Close(); err != nil {
		fatalf("writing trace: %v", err)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fatalf("writing trace: %v", err)
		}
	}
	fmt.Printf("policy              %s\n", res.Policy)
	fmt.Printf("offered gross util  %.4f\n", res.OfferedGross)
	fmt.Printf("measured gross util %.4f\n", res.GrossUtilization)
	fmt.Printf("measured net util   %.4f\n", res.NetUtilization)
	fmt.Printf("mean response       %.1f s (95%% +- %.1f)\n", res.MeanResponse, res.RespHalfWidth)
	fmt.Printf("  local queues      %s\n", fmtNaN(res.MeanResponseLocal))
	fmt.Printf("  global queue      %s\n", fmtNaN(res.MeanResponseGlobal))
	fmt.Printf("median response     %s\n", fmtNaN(res.MedianResponse))
	fmt.Printf("p95 response        %s\n", fmtNaN(res.P95Response))
	fmt.Printf("mean slowdown       %.2f\n", res.MeanSlowdown)
	fmt.Printf("jobs in system      %.1f (Little: lambda*W = %.1f)\n",
		res.MeanJobsInSystem, res.Throughput*res.MeanResponse)
	fmt.Printf("per-cluster util    %s (imbalance %.3f)\n",
		formatUtils(res.PerClusterUtilization), res.UtilizationImbalance)
	fmt.Printf("resp by size class  %s\n", formatClasses(res.ResponseBySizeClass))
	fmt.Printf("jobs measured       %d\n", res.Jobs)
	fmt.Printf("queue at end        %d\n", res.FinalQueue)
	fmt.Printf("saturated           %v\n", res.Saturated)
	if res.TruncatedJobs > 0 {
		fmt.Printf("jobs truncated      %d (divergence cutoff stopped the run early)\n", res.TruncatedJobs)
	}
	if *decisions {
		fmt.Printf("decisions recorded  %d\n", res.Decisions)
		meanRegret := 0.0
		if res.Jobs > 0 {
			meanRegret = res.RegretTotal / float64(res.Jobs)
		}
		fmt.Printf("regret              %.1f s/job (%d dispatches with regret, max %.0f s)\n",
			meanRegret, res.RegretDecisions, res.RegretMax)
	}
	if *mtbf > 0 {
		fmt.Printf("failures injected   %d (skipped %d, repairs %d)\n",
			res.FailuresInjected, res.FailuresSkipped, res.Repairs)
		fmt.Printf("jobs killed         %d (resubmits %d)\n", res.JobsKilled, res.Resubmits)
		fmt.Printf("work lost           %.0f proc-s\n", res.WorkLost)
		if *ckptInterval > 0 {
			fmt.Printf("work saved          %.0f proc-s (checkpoint interval %.0f s)\n", res.WorkSaved, *ckptInterval)
		}
		fmt.Printf("mean avail fraction %.4f\n", res.MeanAvailableFraction)
	}
	if *metrics {
		fmt.Println()
		fmt.Println("--- metrics ---")
		if err := observer.WriteText(os.Stdout); err != nil {
			fatalf("%v", err)
		}
	}
}

func formatUtils(us []float64) string {
	parts := make([]string, len(us))
	for i, u := range us {
		parts[i] = fmt.Sprintf("%.3f", u)
	}
	return strings.Join(parts, " ")
}

func formatClasses(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%s:%s", core.SizeClassLabel(i), fmtNaN(v))
	}
	return strings.Join(parts, "  ")
}

func fmtNaN(v float64) string {
	if v != v {
		return "-"
	}
	return fmt.Sprintf("%.1f s", v)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcsim: "+format+"\n", args...)
	os.Exit(1)
}
