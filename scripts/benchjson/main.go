// Command benchjson converts `go test -bench -benchmem` output into the
// JSON benchmark record the repo keeps under version control (BENCH_1.json).
//
// It reads benchmark output on stdin and merges one snapshot into the
// output file under the given key, preserving any other keys already
// recorded there — so a "baseline" snapshot taken before an optimization
// survives the later "after" run:
//
//	go test -run '^$' -bench . -benchmem . | go run ./scripts/benchjson -key baseline -o BENCH_1.json
//	... optimize ...
//	go test -run '^$' -bench . -benchmem . | go run ./scripts/benchjson -key after -o BENCH_1.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchResult is one benchmark line.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Iterations  int64   `json:"iterations"`
}

// snapshot is one recorded bench run.
type snapshot struct {
	Meta       map[string]string      `json:"meta,omitempty"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	key := flag.String("key", "after", "snapshot key to record under (e.g. baseline, after)")
	out := flag.String("o", "BENCH_1.json", "output JSON file (merged in place)")
	flag.Parse()

	snap := snapshot{Meta: map[string]string{}, Benchmarks: map[string]benchResult{}}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays readable
		for _, k := range []string{"goos", "goarch", "cpu", "pkg"} {
			if v, ok := strings.CutPrefix(line, k+": "); ok {
				snap.Meta[k] = v
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var r benchResult
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		snap.Benchmarks[m[1]] = r
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	record := map[string]snapshot{}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &record); err != nil {
			fatal(fmt.Errorf("existing %s is not a bench record: %w", *out, err))
		}
	}
	record[*key] = snap
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: recorded %d benchmarks under %q in %s\n", len(snap.Benchmarks), *key, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
