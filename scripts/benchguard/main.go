// Command benchguard gates allocation regressions in CI. It reads
// `go test -bench -benchmem` output on stdin and compares allocs/op
// against a snapshot recorded by scripts/benchjson:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem . |
//	    go run ./scripts/benchguard -record BENCH_2.json -key smoke
//
// Benchmarks matching -match (default: the macro benchmarks Fig5 and
// BackfillPolicies/*, plus the zero-failure-rate fault-path run
// FaultPathDisabled) fail the run when their allocs/op exceed the
// recorded value by more than -max-regress (default 10%). A recorded
// matching benchmark missing from the fresh output also fails — a
// benchmark that silently stops running guards nothing.
//
// Compare like with like: the recorded key must have been measured at the
// same -benchtime as the guarded run (single-shot runs include warm-up
// allocations that amortized runs do not).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchResult mirrors the scripts/benchjson record shape.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Iterations  int64   `json:"iterations"`
}

type snapshot struct {
	Meta       map[string]string      `json:"meta,omitempty"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	record := flag.String("record", "BENCH_2.json", "benchmark record written by scripts/benchjson")
	key := flag.String("key", "smoke", "snapshot key holding the reference measurements")
	match := flag.String("match", `^BenchmarkFig5$|^BenchmarkBackfillPolicies/|^BenchmarkFaultPathDisabled$`, "regexp selecting the guarded benchmarks")
	maxRegress := flag.Float64("max-regress", 0.10, "allowed fractional allocs/op increase over the record")
	flag.Parse()

	guard, err := regexp.Compile(*match)
	if err != nil {
		fatal(fmt.Errorf("bad -match: %w", err))
	}
	data, err := os.ReadFile(*record)
	if err != nil {
		fatal(err)
	}
	recorded := map[string]snapshot{}
	if err := json.Unmarshal(data, &recorded); err != nil {
		fatal(fmt.Errorf("%s: %w", *record, err))
	}
	ref, ok := recorded[*key]
	if !ok {
		fatal(fmt.Errorf("%s has no %q snapshot; run `make bench-record` first", *record, *key))
	}

	fresh := map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays readable
		m := benchLine.FindStringSubmatch(line)
		if m == nil || m[5] == "" {
			continue
		}
		allocs, err := strconv.ParseFloat(m[5], 64)
		if err != nil {
			continue
		}
		fresh[m[1]] = allocs
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(ref.Benchmarks))
	for name := range ref.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		rec := ref.Benchmarks[name]
		if !guard.MatchString(name) || rec.AllocsPerOp == 0 {
			continue
		}
		got, ok := fresh[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s recorded in %s but missing from this run\n", name, *record)
			failed = true
			continue
		}
		limit := rec.AllocsPerOp * (1 + *maxRegress)
		if got > limit {
			fmt.Fprintf(os.Stderr, "benchguard: %s allocates %.0f/op, recorded %.0f/op (limit %.0f, +%.0f%%)\n",
				name, got, rec.AllocsPerOp, limit, *maxRegress*100)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchguard: allocs/op within %.0f%% of the %q record\n", *maxRegress*100, *key)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
