// Command benchguard gates benchmark regressions in CI. It reads
// `go test -bench -benchmem` output on stdin and compares it against a
// snapshot recorded by scripts/benchjson:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem . |
//	    go run ./scripts/benchguard -record BENCH_3.json -key smoke
//
// Benchmarks matching -match (default: the macro benchmarks Fig5 and
// BackfillPolicies/*, plus the zero-overhead-when-off contract runs
// FaultPathDisabled/* and DecisionPathDisabled/*) fail the run when their allocs/op exceed the
// recorded value by more than -max-regress (default 10%), or — when
// -max-time-regress is positive — when their ns/op exceed the recorded
// value by more than that fraction. A recorded matching benchmark missing
// from the fresh output also fails — a benchmark that silently stops
// running guards nothing. When the input repeats a benchmark (go test
// -count N), the per-benchmark minimum is compared — minimum-of-N is the
// standard noise filter on shared machines.
//
// The time gate is opt-in because single-shot wall-clock is noisy: the
// default 35% catches an optimization being accidentally reverted (the
// hot-path rewrites measure in multiples, not percents) while staying
// clear of scheduler jitter. Machines slower than the recording machine
// need a larger allowance or a re-recorded snapshot.
//
// Compare like with like: the recorded key must have been measured at the
// same -benchtime as the guarded run (single-shot runs include warm-up
// allocations that amortized runs do not).
//
// A second, record-free gate compares two sub-benchmarks from the fresh
// run against each other: with -speedup-base A -speedup-test B
// -min-speedup R the run fails unless ns/op(A) / ns/op(B) >= R. This is
// the sweep-layer analogue of the allocs gate — it pins an optimization
// as a *ratio* (e.g. the saturation-cutoff overhaul must keep the figure
// wall-clock benchmark at least 3x faster than its legacy arm), so it is
// immune to the machine being faster or slower than the recording one.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchResult mirrors the scripts/benchjson record shape.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Iterations  int64   `json:"iterations"`
}

type snapshot struct {
	Meta       map[string]string      `json:"meta,omitempty"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

// measurement is one fresh benchmark line from stdin.
type measurement struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	record := flag.String("record", "BENCH_3.json", "benchmark record written by scripts/benchjson")
	key := flag.String("key", "smoke", "snapshot key holding the reference measurements")
	match := flag.String("match", `^BenchmarkFig5$|^BenchmarkBackfillPolicies/|^BenchmarkFaultPathDisabled/|^BenchmarkDecisionPathDisabled/`, "regexp selecting the guarded benchmarks")
	maxRegress := flag.Float64("max-regress", 0.10, "allowed fractional allocs/op increase over the record")
	maxTimeRegress := flag.Float64("max-time-regress", 0, "allowed fractional ns/op increase over the record (0 = no time gate)")
	speedupBase := flag.String("speedup-base", "", "slow (baseline) benchmark name for the in-run speedup gate")
	speedupTest := flag.String("speedup-test", "", "fast (optimized) benchmark name for the in-run speedup gate")
	minSpeedup := flag.Float64("min-speedup", 0, "fail unless ns/op(speedup-base) / ns/op(speedup-test) >= this ratio (0 = no speedup gate)")
	flag.Parse()
	if (*minSpeedup > 0) != (*speedupBase != "" && *speedupTest != "") {
		fatal(fmt.Errorf("-min-speedup, -speedup-base and -speedup-test must be set together"))
	}

	guard, err := regexp.Compile(*match)
	if err != nil {
		fatal(fmt.Errorf("bad -match: %w", err))
	}
	data, err := os.ReadFile(*record)
	if err != nil {
		fatal(err)
	}
	recorded := map[string]snapshot{}
	if err := json.Unmarshal(data, &recorded); err != nil {
		fatal(fmt.Errorf("%s: %w", *record, err))
	}
	ref, ok := recorded[*key]
	if !ok {
		fatal(fmt.Errorf("%s has no %q snapshot; run `make bench-record` first", *record, *key))
	}

	fresh := map[string]measurement{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays readable
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		meas := measurement{nsPerOp: ns}
		if m[5] != "" {
			if allocs, err := strconv.ParseFloat(m[5], 64); err == nil {
				meas.allocsPerOp = allocs
				meas.hasAllocs = true
			}
		}
		// With -count N the same benchmark reports several times; keep
		// the per-field minimum. Minimum-of-N is the standard noise
		// filter for wall clock (the fastest run had the least
		// interference), and the allocation floor is what the gate means
		// to pin (later runs shed warm-up allocations).
		if prev, ok := fresh[m[1]]; ok {
			if prev.nsPerOp < meas.nsPerOp {
				meas.nsPerOp = prev.nsPerOp
			}
			if prev.hasAllocs && (!meas.hasAllocs || prev.allocsPerOp < meas.allocsPerOp) {
				meas.allocsPerOp = prev.allocsPerOp
				meas.hasAllocs = true
			}
		}
		fresh[m[1]] = meas
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(ref.Benchmarks))
	for name := range ref.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		rec := ref.Benchmarks[name]
		if !guard.MatchString(name) {
			continue
		}
		got, ok := fresh[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s recorded in %s but missing from this run\n", name, *record)
			failed = true
			continue
		}
		if rec.AllocsPerOp > 0 && got.hasAllocs {
			limit := rec.AllocsPerOp * (1 + *maxRegress)
			if got.allocsPerOp > limit {
				fmt.Fprintf(os.Stderr, "benchguard: %s allocates %.0f/op, recorded %.0f/op (limit %.0f, +%.0f%%)\n",
					name, got.allocsPerOp, rec.AllocsPerOp, limit, *maxRegress*100)
				failed = true
			}
		}
		if *maxTimeRegress > 0 && rec.NsPerOp > 0 {
			limit := rec.NsPerOp * (1 + *maxTimeRegress)
			if got.nsPerOp > limit {
				fmt.Fprintf(os.Stderr, "benchguard: %s takes %.0f ns/op, recorded %.0f ns/op (limit %.0f, +%.0f%%)\n",
					name, got.nsPerOp, rec.NsPerOp, limit, *maxTimeRegress*100)
				failed = true
			}
		}
	}
	if *minSpeedup > 0 {
		base, baseOK := fresh[*speedupBase]
		test, testOK := fresh[*speedupTest]
		switch {
		case !baseOK || !testOK:
			// A renamed or deleted arm must fail loudly: a speedup gate
			// that silently stops measuring guards nothing.
			for name, ok := range map[string]bool{*speedupBase: baseOK, *speedupTest: testOK} {
				if !ok {
					fmt.Fprintf(os.Stderr, "benchguard: speedup gate: %s missing from this run\n", name)
				}
			}
			failed = true
		case test.nsPerOp <= 0:
			fmt.Fprintf(os.Stderr, "benchguard: speedup gate: %s reports %g ns/op\n", *speedupTest, test.nsPerOp)
			failed = true
		default:
			ratio := base.nsPerOp / test.nsPerOp
			if ratio < *minSpeedup {
				fmt.Fprintf(os.Stderr, "benchguard: %s is only %.2fx faster than %s (floor %.2fx)\n",
					*speedupTest, ratio, *speedupBase, *minSpeedup)
				failed = true
			} else {
				fmt.Fprintf(os.Stderr, "benchguard: %s is %.2fx faster than %s (floor %.2fx)\n",
					*speedupTest, ratio, *speedupBase, *minSpeedup)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	if *maxTimeRegress > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: allocs/op within %.0f%% and ns/op within %.0f%% of the %q record\n",
			*maxRegress*100, *maxTimeRegress*100, *key)
	} else {
		fmt.Fprintf(os.Stderr, "benchguard: allocs/op within %.0f%% of the %q record\n", *maxRegress*100, *key)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
